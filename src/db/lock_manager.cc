#include "db/lock_manager.h"

#include <algorithm>

#include "sim/check.h"

namespace lazyrep::db {

void LockManager::WaiterQueue::PushBack(Waiter* w) {
  w->next = nullptr;
  if (tail == nullptr) {
    head = tail = w;
  } else {
    tail->next = w;
    tail = w;
  }
  ++size;
}

void LockManager::WaiterQueue::PushFront(Waiter* w) {
  w->next = head;
  head = w;
  if (tail == nullptr) tail = w;
  ++size;
}

LockManager::Waiter* LockManager::WaiterQueue::PopFront() {
  Waiter* w = head;
  head = w->next;
  if (head == nullptr) tail = nullptr;
  w->next = nullptr;
  --size;
  return w;
}

bool LockManager::WaiterQueue::Remove(Waiter* w) {
  Waiter* prev = nullptr;
  for (Waiter* cur = head; cur != nullptr; prev = cur, cur = cur->next) {
    if (cur != w) continue;
    if (prev == nullptr) {
      head = cur->next;
    } else {
      prev->next = cur->next;
    }
    if (tail == cur) tail = prev;
    cur->next = nullptr;
    --size;
    return true;
  }
  return false;
}

bool LockManager::CompatibleWithHolders(const ItemLock& lock, TxnId txn,
                                        LockMode mode) {
  for (const auto& [holder, held_mode] : lock.holders) {
    if (holder == txn) continue;
    if (!LocksCompatible(mode, held_mode)) return false;
  }
  return true;
}

void LockManager::AddHolder(ItemLock* lock, TxnId txn, LockMode mode) {
  for (auto& [holder, held_mode] : lock->holders) {
    if (holder == txn) {
      if (LockStrength(mode) > LockStrength(held_mode)) held_mode = mode;
      return;
    }
  }
  lock->holders.emplace_back(txn, mode);
}

sim::Task<sim::WaitStatus> LockManager::Acquire(TxnId txn, ItemId item,
                                                LockMode mode,
                                                sim::SimTime timeout) {
  ItemLock& lock = locks_[item];

  // Re-acquisition of an equal-or-weaker mode.
  bool holds_any = false;
  for (const auto& [holder, held_mode] : lock.holders) {
    if (holder != txn) continue;
    holds_any = true;
    if (LockStrength(held_mode) >= LockStrength(mode)) {
      ++grants_;
      TraceResolution(txn, item, mode, sim::WaitStatus::kSignaled, 0);
      co_return sim::WaitStatus::kSignaled;
    }
  }
  bool is_upgrade = holds_any;  // holds a weaker mode, wants a stronger one

  // Immediate grant: compatible with holders, and either an upgrade (which
  // jumps the queue) or no earlier waiter pending (FIFO fairness).
  if (CompatibleWithHolders(lock, txn, mode) &&
      (is_upgrade || lock.queue.empty())) {
    AddHolder(&lock, txn, mode);
    if (!holds_any) held_[txn].push_back(item);
    ++grants_;
    TraceResolution(txn, item, mode, sim::WaitStatus::kSignaled, 0);
    co_return sim::WaitStatus::kSignaled;
  }

  // Must wait.
  ++waits_;
  Waiter waiter(sim_);
  waiter.txn = txn;
  waiter.mode = mode;
  waiter.is_upgrade = is_upgrade;
  if (is_upgrade) {
    lock.queue.PushFront(&waiter);  // upgrades served before plain requests
  } else {
    lock.queue.PushBack(&waiter);
  }

  sim::SimTime wait_start = sim_->Now();
  sim::WaitStatus status = co_await waiter.shot.Wait(timeout);
  wait_time_.Add(sim_->Now() - wait_start);

  if (status != sim::WaitStatus::kSignaled) {
    if (status == sim::WaitStatus::kTimeout) ++timeouts_;
    // Remove ourselves from the queue; the lock entry may need pumping since
    // our departure can unblock requests behind us.
    ItemLock& lk = locks_[item];
    lk.queue.Remove(&waiter);
    PumpQueue(item, &lk);
    MaybeErase(item);
    TraceResolution(txn, item, mode, status, sim_->Now() - wait_start);
    co_return status;
  }

  // Granted by PumpQueue (which installed us as a holder).
  ++grants_;
  TraceResolution(txn, item, mode, status, sim_->Now() - wait_start);
  co_return sim::WaitStatus::kSignaled;
}

void LockManager::PumpQueue(ItemId item, ItemLock* lock) {
  (void)item;
  while (!lock->queue.empty()) {
    Waiter* head = lock->queue.head;
    if (!CompatibleWithHolders(*lock, head->txn, head->mode)) break;
    lock->queue.PopFront();
    bool already_held = false;
    for (const auto& [holder, mode] : lock->holders) {
      if (holder == head->txn) already_held = true;
    }
    AddHolder(lock, head->txn, head->mode);
    if (!already_held) held_[head->txn].push_back(item);
    head->shot.Fire(sim::WaitStatus::kSignaled);
  }
}

void LockManager::MaybeErase(ItemId item) {
  auto it = locks_.find(item);
  if (it != locks_.end() && it->second.holders.empty() &&
      it->second.queue.empty()) {
    locks_.erase(it);
  }
}

void LockManager::Release(TxnId txn, ItemId item) {
  auto it = locks_.find(item);
  if (it == locks_.end()) return;
  ItemLock& lock = it->second;
  auto h = std::find_if(lock.holders.begin(), lock.holders.end(),
                        [txn](const auto& p) { return p.first == txn; });
  if (h == lock.holders.end()) return;
  lock.holders.erase(h);
  auto held_it = held_.find(txn);
  if (held_it != held_.end()) {
    auto& items = held_it->second;
    items.erase(std::remove(items.begin(), items.end(), item), items.end());
    if (items.empty()) held_.erase(held_it);
  }
  PumpQueue(item, &lock);
  MaybeErase(item);
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  std::vector<ItemId> items = std::move(it->second);
  held_.erase(it);
  for (ItemId item : items) {
    auto lit = locks_.find(item);
    if (lit == locks_.end()) continue;
    ItemLock& lock = lit->second;
    auto h = std::find_if(lock.holders.begin(), lock.holders.end(),
                          [txn](const auto& p) { return p.first == txn; });
    if (h != lock.holders.end()) lock.holders.erase(h);
    PumpQueue(item, &lock);
    MaybeErase(item);
  }
}

void LockManager::CrashReset(const std::function<bool(TxnId)>& keep) {
  // Phase 1: detach every waiter and filter holders while the table is in a
  // consistent state. Shots fire through the event queue (non-reentrant),
  // but collecting first keeps the walk independent of resume order anyway.
  std::vector<Waiter*> cancelled;
  for (auto it = locks_.begin(); it != locks_.end();) {
    ItemLock& lock = it->second;
    while (!lock.queue.empty()) cancelled.push_back(lock.queue.PopFront());
    std::erase_if(lock.holders,
                  [&keep](const auto& p) { return !keep(p.first); });
    if (lock.holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  // Phase 2: rebuild the per-transaction held index from what survived.
  held_.clear();
  for (const auto& [item, lock] : locks_) {
    for (const auto& [holder, mode] : lock.holders) {
      held_[holder].push_back(item);
    }
  }
  // Phase 3: wake the cancelled waiters; their Acquire frames clean up.
  for (Waiter* w : cancelled) w->shot.Fire(sim::WaitStatus::kCancelled);
}

bool LockManager::Holds(TxnId txn, ItemId item, LockMode mode) const {
  auto it = locks_.find(item);
  if (it == locks_.end()) return false;
  for (const auto& [holder, held_mode] : it->second.holders) {
    if (holder != txn) continue;
    return LockStrength(held_mode) >= LockStrength(mode);
  }
  return false;
}

size_t LockManager::HolderCount(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.holders.size();
}

size_t LockManager::WaiterCount(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.queue.size;
}

std::vector<ItemId> LockManager::HeldItems(TxnId txn) const {
  auto it = held_.find(txn);
  if (it == held_.end()) return {};
  return it->second;
}

void LockManager::ResetStats() {
  grants_ = waits_ = timeouts_ = 0;
  wait_time_.Clear();
}

}  // namespace lazyrep::db
