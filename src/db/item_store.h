#ifndef LAZYREP_DB_ITEM_STORE_H_
#define LAZYREP_DB_ITEM_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/types.h"

namespace lazyrep::db {

/// One physical site's replica set: for every data item, the write timestamp
/// of the locally installed version plus the readers of that version.
///
/// Writes follow the Thomas Write Rule (§2.1): a write whose transaction
/// timestamp is older than the installed version's timestamp is ignored —
/// the writer continues as if it had succeeded. Reader lists feed the
/// local-serialization-order predecessor edges used by completion tracking.
class ItemStore {
 public:
  explicit ItemStore(uint32_t num_items) : replicas_(num_items) {}

  /// Outcome of a TWR write.
  struct WriteResult {
    /// False when the Thomas Write Rule ignored the write.
    bool applied = false;
    /// Transactions that read the version this write replaced (conflict
    /// predecessors of the writer). Empty for an ignored write.
    std::vector<TxnId> prior_readers;
    /// Writer of the version this write replaced (ww predecessor), or the
    /// newer writer that masked an ignored write (the ignored writer then
    /// precedes `other_writer` in the serialization order).
    TxnId other_writer = kNoTxn;
  };

  /// Applies (or ignores, per TWR) a write of `item` stamped `ts`.
  WriteResult ApplyWrite(ItemId item, Timestamp ts);

  /// Reads the installed version; registers `reader` against it. Returns the
  /// version's write timestamp (ts.txn identifies the writer).
  Timestamp Read(ItemId item, TxnId reader);

  /// Current version timestamp without registering a reader.
  Timestamp VersionOf(ItemId item) const { return replicas_[item].ts; }

  /// Removes `reader`'s registrations (on abort or completion).
  void RemoveReader(TxnId reader, const std::vector<ItemId>& items);

  /// Readers registered against the current version of `item`.
  const std::vector<TxnId>& ReadersOf(ItemId item) const {
    return replicas_[item].readers;
  }

  uint32_t num_items() const { return static_cast<uint32_t>(replicas_.size()); }

  uint64_t writes_applied() const { return writes_applied_; }
  uint64_t writes_ignored() const { return writes_ignored_; }

 private:
  struct Replica {
    Timestamp ts;  // zero: the initial database state
    std::vector<TxnId> readers;
  };

  std::vector<Replica> replicas_;
  uint64_t writes_applied_ = 0;
  uint64_t writes_ignored_ = 0;
};

}  // namespace lazyrep::db

#endif  // LAZYREP_DB_ITEM_STORE_H_
