#ifndef LAZYREP_DB_LOCK_MANAGER_H_
#define LAZYREP_DB_LOCK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "db/types.h"
#include "sim/condition.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "trace/trace_sink.h"

namespace lazyrep::db {

/// Lock modes of the local (and, in the locking protocol, primary-copy)
/// concurrency control.
///
/// The lazy protocols synchronize ww conflicts with the Thomas Write Rule,
/// so two writers never block each other: kUpdate is compatible with kUpdate
/// but conflicts with kShared. This matches §2.2 ("read and update
/// operations conflict") and §2.3.1 (no VS merge on ww). The eager baseline
/// instead serializes writers the textbook way with kExclusive, which
/// conflicts with every mode including itself.
enum class LockMode : uint8_t {
  kShared,     ///< read lock
  kUpdate,     ///< write lock (TWR-synchronized against other writers)
  kExclusive,  ///< write lock that excludes everything (eager strict 2PL)
};

/// Total strength order kShared < kUpdate < kExclusive: a held mode covers
/// any request of equal or lesser strength by the same transaction.
inline int LockStrength(LockMode mode) { return static_cast<int>(mode); }

/// Returns true when a `requested` lock may coexist with a `held` lock of
/// another transaction.
inline bool LocksCompatible(LockMode requested, LockMode held) {
  // S-S and U-U coexist; S-U conflicts; X conflicts with everything.
  return requested == held && requested != LockMode::kExclusive;
}

/// A two-phase-locking lock manager with FIFO queuing and timeout-based
/// deadlock resolution (the paper manages deadlocks purely by timeout, §3).
///
/// One instance serves one physical site (the local DBMS's transaction
/// manager); the locking protocol also uses the instances at primary sites
/// for its global read/update locks.
class LockManager {
 public:
  explicit LockManager(sim::Simulation* sim) : sim_(sim) {}
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `item` for `txn`, waiting at most `timeout` seconds.
  /// Returns kSignaled on grant, kTimeout on deadlock-timeout. Re-acquiring
  /// an already-held equal-or-weaker mode succeeds immediately; requesting a
  /// stronger mode than the one held performs an upgrade (upgrades are
  /// evaluated against current holders only, jumping the FIFO queue, so an
  /// upgrade cannot deadlock against ordinary queued requests).
  sim::Task<sim::WaitStatus> Acquire(TxnId txn, ItemId item, LockMode mode,
                                     sim::SimTime timeout);

  /// Releases whatever lock `txn` holds on `item`. No-op if none held.
  void Release(TxnId txn, ItemId item);

  /// Releases all locks held by `txn`.
  void ReleaseAll(TxnId txn);

  /// Amnesia-crash wipe: drops every held lock except those of transactions
  /// `keep` selects (recovery re-establishes locks of in-doubt and locally
  /// committed transactions from the log), and cancels every waiting request
  /// (their Acquire calls resume with kCancelled). Waiters resume through
  /// the event queue, never inside this call.
  void CrashReset(const std::function<bool(TxnId)>& keep);

  /// True if `txn` currently holds at least `mode` on `item`.
  bool Holds(TxnId txn, ItemId item, LockMode mode) const;

  /// Number of transactions currently holding a lock on `item`.
  size_t HolderCount(ItemId item) const;

  /// Number of requests currently waiting on `item`.
  size_t WaiterCount(ItemId item) const;

  /// Locks currently held by `txn` (for diagnostics/tests).
  std::vector<ItemId> HeldItems(TxnId txn) const;

  // -- statistics ----------------------------------------------------------

  uint64_t grants() const { return grants_; }
  uint64_t waits() const { return waits_; }
  uint64_t timeouts() const { return timeouts_; }
  /// Waiting time of requests that had to wait (granted or timed out).
  const sim::TallyStat& wait_time() const { return wait_time_; }
  void ResetStats();

  /// Trace hook: every Acquire resolution emits a kLockGrant/kLockDeny
  /// record at `site` (null sink = no tracing, the default).
  void set_trace(trace::TraceSink* sink, uint16_t site) {
    trace_ = sink;
    trace_site_ = site;
  }

 private:
  /// A waiting lock request. Lives on the Acquire coroutine's frame; the
  /// wait queue links through it intrusively, so queuing a request performs
  /// no heap allocation.
  struct Waiter {
    explicit Waiter(sim::Simulation* sim) : shot(sim) {}
    TxnId txn = kNoTxn;
    LockMode mode = LockMode::kShared;
    bool is_upgrade = false;
    sim::OneShot shot;
    Waiter* next = nullptr;
  };

  /// Intrusive FIFO of Waiters with O(1) push at either end (upgrades jump
  /// to the front). Removal (timeout path) walks from the head — queues are
  /// short, and the erased deque did the same linear scan.
  struct WaiterQueue {
    Waiter* head = nullptr;
    Waiter* tail = nullptr;
    size_t size = 0;

    bool empty() const { return head == nullptr; }
    void PushBack(Waiter* w);
    void PushFront(Waiter* w);
    Waiter* PopFront();
    /// Unlinks `w` if present; returns whether it was.
    bool Remove(Waiter* w);
  };

  struct ItemLock {
    // (txn, mode) pairs; small in practice.
    std::vector<std::pair<TxnId, LockMode>> holders;
    WaiterQueue queue;
  };

  /// True when `txn` requesting `mode` is compatible with all other holders.
  static bool CompatibleWithHolders(const ItemLock& lock, TxnId txn,
                                    LockMode mode);
  /// Installs/updates the holder entry.
  static void AddHolder(ItemLock* lock, TxnId txn, LockMode mode);
  /// Grants queued requests from the head while compatible.
  void PumpQueue(ItemId item, ItemLock* lock);
  /// Drops the lock entry if empty.
  void MaybeErase(ItemId item);

  /// Emits the Acquire resolution when tracing is on. `wait` is the time
  /// spent queued (0 for immediate grants); a deny carries the WaitStatus.
  void TraceResolution(TxnId txn, ItemId item, LockMode mode,
                       sim::WaitStatus status, sim::SimTime wait) {
    if (trace_ == nullptr) return;
    trace_->Emit(status == sim::WaitStatus::kSignaled
                     ? trace::EventType::kLockGrant
                     : trace::EventType::kLockDeny,
                 sim_->Now(), txn, trace_site_, static_cast<uint8_t>(mode),
                 item, static_cast<uint64_t>(status), wait);
  }

  sim::Simulation* sim_;
  trace::TraceSink* trace_ = nullptr;
  uint16_t trace_site_ = 0;
  std::unordered_map<ItemId, ItemLock> locks_;
  std::unordered_map<TxnId, std::vector<ItemId>> held_;
  uint64_t grants_ = 0;
  uint64_t waits_ = 0;
  uint64_t timeouts_ = 0;
  sim::TallyStat wait_time_;
};

}  // namespace lazyrep::db

#endif  // LAZYREP_DB_LOCK_MANAGER_H_
