#include "replay/trace_diff.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace lazyrep::replay {

namespace {

using trace::Record;

std::string FormatRecord(size_t index, const Record& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "#%zu t=%.9f %-11s txn=%llu site=%u item=%u aux=%llu "
                "aux_time=%.9f flags=0x%02x",
                index, r.time, EventTypeName(r.type),
                (unsigned long long)r.txn, r.site, r.item,
                (unsigned long long)r.aux, r.aux_time, r.flags);
  return buf;
}

bool SameRecord(const Record& a, const Record& b) {
  return std::memcmp(&a, &b, sizeof(Record)) == 0;
}

/// Names every field in which `a` and `b` differ ("time, aux, flags").
std::string DifferingFields(const Record& a, const Record& b) {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += ", ";
    out += name;
  };
  if (a.time != b.time) add("time");
  if (a.aux_time != b.aux_time) add("aux_time");
  if (a.txn != b.txn) add("txn");
  if (a.aux != b.aux) add("aux");
  if (a.item != b.item) add("item");
  if (a.site != b.site) add("site");
  if (a.type != b.type) add("type");
  if (a.flags != b.flags) add("flags");
  return out;
}

/// Occurrence index of records[i] among earlier records with the same
/// (txn, type) — the `seq` of the (txn id, event type, seq) alignment key.
size_t OccurrenceIndex(const std::vector<Record>& records, size_t i) {
  size_t seq = 0;
  for (size_t j = 0; j < i; ++j) {
    if (records[j].txn == records[i].txn &&
        records[j].type == records[i].type) {
      ++seq;
    }
  }
  return seq;
}

/// Finds the record in `records` with the same (txn, type) key as `key` and
/// occurrence index `seq`; returns its index or records.size().
size_t FindByKey(const std::vector<Record>& records, const Record& key,
                 size_t seq) {
  size_t seen = 0;
  for (size_t j = 0; j < records.size(); ++j) {
    if (records[j].txn == key.txn && records[j].type == key.type) {
      if (seen == seq) return j;
      ++seen;
    }
  }
  return records.size();
}

void AppendContext(std::string* out, const char* label,
                   const std::vector<Record>& records, size_t center,
                   int context) {
  *out += label;
  *out += ":\n";
  size_t lo = center >= static_cast<size_t>(context) ? center - context : 0;
  size_t hi = std::min(records.size(), center + context + 1);
  for (size_t i = lo; i < hi; ++i) {
    *out += i == center ? "  > " : "    ";
    *out += FormatRecord(i, records[i]);
    *out += "\n";
  }
  if (center >= records.size()) {
    *out += "  > (stream ends at #" + std::to_string(records.size()) + ")\n";
  }
}

/// The keyed follow-up: where did A's diverging event go in B?
void AppendKeyedLocalization(std::string* out, const std::vector<Record>& a,
                             const std::vector<Record>& b, size_t i) {
  const Record& ra = a[i];
  size_t seq = OccurrenceIndex(a, i);
  size_t j = FindByKey(b, ra, seq);
  char buf[256];
  if (j == b.size()) {
    std::snprintf(buf, sizeof(buf),
                  "A's event (txn=%llu type=%s seq=%zu) is absent from B\n",
                  (unsigned long long)ra.txn, EventTypeName(ra.type), seq);
    *out += buf;
    return;
  }
  if (j != i) {
    std::snprintf(buf, sizeof(buf),
                  "A's event (txn=%llu type=%s seq=%zu) appears in B at #%zu "
                  "(displaced %+lld)\n",
                  (unsigned long long)ra.txn, EventTypeName(ra.type), seq, j,
                  (long long)j - (long long)i);
    *out += buf;
  }
  if (!SameRecord(ra, b[j])) {
    std::snprintf(buf, sizeof(buf),
                  "its payload differs there too (fields: %s)\n",
                  DifferingFields(ra, b[j]).c_str());
    *out += buf;
  }
}

}  // namespace

const char* EventTypeName(uint8_t type) {
  static const char* const kNames[] = {
      "none",       "submit", "read",   "lock_grant",  "lock_deny",
      "remote_read", "graph_test", "prepare", "vote", "commit",
      "commit_item", "abort",  "complete", "submit_op"};
  static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                trace::kMaxEventType + 1);
  return type <= trace::kMaxEventType ? kNames[type] : "unknown";
}

PointDiff DiffPoint(const trace::PointTrace& a, const trace::PointTrace& b,
                    const TraceDiffOptions& opt) {
  PointDiff d;
  char buf[256];
  // Identity fields: differences are context, not divergence by themselves
  // (diffing an optimistic recording against its eager replay is the whole
  // point of the tool).
  std::string identity;
  if (a.header.protocol != b.header.protocol) {
    std::snprintf(buf, sizeof(buf), "note: protocol differs (%u vs %u)\n",
                  a.header.protocol, b.header.protocol);
    identity += buf;
  }
  if (a.header.seed != b.header.seed) {
    std::snprintf(buf, sizeof(buf), "note: seed differs (%llu vs %llu)\n",
                  (unsigned long long)a.header.seed,
                  (unsigned long long)b.header.seed);
    identity += buf;
  }
  if (a.header.num_sites != b.header.num_sites) {
    std::snprintf(buf, sizeof(buf), "note: num_sites differs (%u vs %u)\n",
                  a.header.num_sites, b.header.num_sites);
    identity += buf;
  }

  size_t common = std::min(a.records.size(), b.records.size());
  size_t i = 0;
  while (i < common && SameRecord(a.records[i], b.records[i])) ++i;
  if (i == common && a.records.size() == b.records.size()) {
    if (!identity.empty()) d.summary = identity;  // headers-only difference
    d.identical = identity.empty();
    d.first_divergence = a.records.size();
    return d;
  }

  d.identical = false;
  d.first_divergence = i;
  d.summary = identity;
  if (i == common) {
    // One stream is a strict prefix of the other.
    const bool a_shorter = a.records.size() < b.records.size();
    const std::vector<Record>& longer = a_shorter ? b.records : a.records;
    std::snprintf(buf, sizeof(buf),
                  "first divergence at record #%zu: %s ends, %s continues "
                  "(%zu vs %zu records); first extra event:\n",
                  i, a_shorter ? "A" : "B", a_shorter ? "B" : "A",
                  a.records.size(), b.records.size());
    d.summary += buf;
    d.summary += "  " + FormatRecord(i, longer[i]) + "\n";
    return d;
  }
  std::snprintf(buf, sizeof(buf),
                "first divergence at record #%zu (fields: %s)\n", i,
                DifferingFields(a.records[i], b.records[i]).c_str());
  d.summary += buf;
  AppendContext(&d.summary, "A", a.records, i, opt.context);
  AppendContext(&d.summary, "B", b.records, i, opt.context);
  AppendKeyedLocalization(&d.summary, a.records, b.records, i);
  return d;
}

TraceDiff DiffTraceFiles(const trace::TraceFile& a, const trace::TraceFile& b,
                         const TraceDiffOptions& opt) {
  TraceDiff d;
  size_t common = std::min(a.points.size(), b.points.size());
  d.points.reserve(common);
  for (size_t p = 0; p < common; ++p) {
    d.points.push_back(DiffPoint(a.points[p], b.points[p], opt));
    if (!d.points.back().identical && d.first_point < 0) {
      d.identical = false;
      d.first_point = static_cast<int>(p);
      d.summary = "point " + std::to_string(p) + ":\n" +
                  d.points.back().summary;
    }
  }
  if (a.points.size() != b.points.size()) {
    d.identical = false;
    std::string note = "files hold different point counts (" +
                       std::to_string(a.points.size()) + " vs " +
                       std::to_string(b.points.size()) + ")\n";
    if (d.first_point < 0) {
      d.first_point = static_cast<int>(common);
      d.summary = note;
    } else {
      d.summary += note;
    }
  }
  return d;
}

}  // namespace lazyrep::replay
