#ifndef LAZYREP_REPLAY_WORKLOAD_SCRIPT_H_
#define LAZYREP_REPLAY_WORKLOAD_SCRIPT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/study.h"
#include "core/workload_source.h"
#include "db/types.h"
#include "trace/trace_reader.h"

namespace lazyrep::replay {

/// One scripted transaction: the recorded submission instant and the exact
/// operation list the original run generated.
struct ScriptTxn {
  double submit_time = 0;
  bool is_update = false;
  std::vector<db::Operation> ops;
};

/// The deterministic workload schedule extracted from one captured point
/// block (DESIGN.md §4.9): per-site submission sequences in trace order,
/// with each transaction's exact op-level read/write set. Everything a run
/// consumes from its workload generator — and nothing it derives itself
/// (ids, warm-up accounting, timestamps) — so the same script re-executed
/// under a different protocol, topology, or fault schedule holds the
/// workload fixed while everything else varies.
class WorkloadScript {
 public:
  /// Extracts the schedule from `pt` (from a file whose header said
  /// `trace_version`). Fails with a diagnostic in `error` when the point
  /// recorded no submissions at all, or when it lacks the v2 kSubmitOp
  /// access-set records (a v1-era capture cannot be replayed).
  static bool FromPoint(const trace::PointTrace& pt, uint32_t trace_version,
                        WorkloadScript* out, std::string* error);

  int num_sites() const { return num_sites_; }
  uint64_t total_submissions() const { return total_; }
  const std::vector<ScriptTxn>& site(db::SiteId s) const {
    return per_site_[s];
  }

  // Recorded run identity, for defaulting the replay configuration.
  uint64_t seed() const { return seed_; }
  uint32_t protocol() const { return protocol_; }
  double x() const { return x_; }
  /// Instant of the last scripted submission — with total_submissions(),
  /// the script's effective offered rate.
  double last_submit_time() const { return last_submit_time_; }

 private:
  int num_sites_ = 0;
  uint64_t total_ = 0;
  uint64_t seed_ = 0;
  uint32_t protocol_ = 0;
  double x_ = 0;
  double last_submit_time_ = 0;
  std::vector<std::vector<ScriptTxn>> per_site_;
};

/// WorkloadSource that replays a WorkloadScript: each site's submissions
/// land at the recorded absolute instants (no RNG draws — the site streams
/// stay untouched, exactly as if the generator had drawn them), carrying the
/// recorded operations. Holds per-site cursors, so one instance serves one
/// System run; share the script itself across runs.
class ScriptWorkload final : public core::WorkloadSource {
 public:
  explicit ScriptWorkload(std::shared_ptr<const WorkloadScript> script)
      : script_(std::move(script)), cursor_(script_->num_sites(), 0) {}

  Arrival NextArrival(db::SiteId s, sim::RandomStream* rng) override;
  txn::Transaction NextTxn(db::TxnId id, db::SiteId s,
                           sim::RandomStream* rng) override;

 private:
  std::shared_ptr<const WorkloadScript> script_;
  std::vector<size_t> cursor_;
};

/// Pins the configuration fields the script dictates on top of `base`:
/// num_sites, total_txns = recorded submissions (so the freeze-at-last-
/// submission instant matches the recording), and — unless `keep_seed` —
/// the recorded seed. Everything else (topology, faults, hardware, timeouts,
/// warm-up) stays as `base` says: that is the what-if surface. Bit-exact
/// replay additionally requires those knobs to match the recording run's;
/// the trace does not carry the full configuration.
core::SystemConfig MakeReplayConfig(const WorkloadScript& script,
                                    core::SystemConfig base,
                                    bool keep_seed = false);

/// The full RunSpec replaying `script` under `kind`: MakeReplayConfig'd
/// config plus a workload factory handing each run a fresh ScriptWorkload
/// over the shared script.
core::RunSpec MakeReplaySpec(std::shared_ptr<const WorkloadScript> script,
                             const core::SystemConfig& base,
                             core::ProtocolKind kind, double x = 0,
                             bool keep_seed = false);

}  // namespace lazyrep::replay

#endif  // LAZYREP_REPLAY_WORKLOAD_SCRIPT_H_
