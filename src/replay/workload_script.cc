#include "replay/workload_script.h"

#include <cstdio>
#include <unordered_map>
#include <utility>

#include "sim/check.h"

namespace lazyrep::replay {

bool WorkloadScript::FromPoint(const trace::PointTrace& pt,
                               uint32_t trace_version, WorkloadScript* out,
                               std::string* error) {
  auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  if (trace_version < 2) {
    return fail("trace version " + std::to_string(trace_version) +
                " predates the op-level access set (kSubmitOp, v2); "
                "re-capture with --trace to replay");
  }
  if (pt.header.num_sites == 0) {
    return fail("point " + std::to_string(pt.header.point_index) +
                " has no sites");
  }
  out->num_sites_ = static_cast<int>(pt.header.num_sites);
  out->total_ = 0;
  out->seed_ = pt.header.seed;
  out->protocol_ = pt.header.protocol;
  out->x_ = pt.header.x;
  out->per_site_.assign(out->num_sites_, {});

  // Where each submitted txn's ScriptTxn lives, plus the op count its
  // kSubmit announced. kSubmitOp records follow their kSubmit contiguously
  // in the emission order, but keying by txn id keeps the extraction robust
  // to any interleaving a future emitter might produce.
  struct Open {
    db::SiteId site = 0;
    size_t index = 0;
    uint64_t announced_ops = 0;
  };
  std::unordered_map<uint64_t, Open> open;
  for (const trace::Record& r : pt.records) {
    if (r.type == static_cast<uint8_t>(trace::EventType::kSubmit)) {
      if (r.site >= pt.header.num_sites) {
        return fail("submit record of txn " + std::to_string(r.txn) +
                    " at non-site endpoint " + std::to_string(r.site));
      }
      std::vector<ScriptTxn>& seq = out->per_site_[r.site];
      ScriptTxn st;
      st.submit_time = r.time;
      st.is_update = (r.flags & trace::kFlagUpdate) != 0;
      st.ops.reserve(r.aux);
      seq.push_back(std::move(st));
      open[r.txn] = Open{r.site, seq.size() - 1, r.aux};
      ++out->total_;
    } else if (r.type == static_cast<uint8_t>(trace::EventType::kSubmitOp)) {
      auto it = open.find(r.txn);
      if (it == open.end()) {
        return fail("kSubmitOp of txn " + std::to_string(r.txn) +
                    " precedes its kSubmit");
      }
      db::Operation op;
      op.item = r.item;
      op.type = (r.aux & 1) != 0 ? db::OpType::kWrite : db::OpType::kRead;
      out->per_site_[it->second.site][it->second.index].ops.push_back(op);
    }
  }
  if (out->total_ == 0) {
    return fail("point " + std::to_string(pt.header.point_index) +
                " recorded no submissions; nothing to replay");
  }
  // Replay feeds each site's submit times to sim::Simulation::DelayUntil in
  // script order, and DelayUntil clamps an already-passed instant to the
  // current time — a regressing sequence would be *silently* reshaped
  // rather than reproduced. A capture emits kSubmit records in simulation
  // order, so a regression means a corrupt or hand-edited trace: reject it
  // here with the site and both offending timestamps, not downstream where
  // the clamp hides it.
  for (size_t s = 0; s < out->per_site_.size(); ++s) {
    const std::vector<ScriptTxn>& seq = out->per_site_[s];
    for (size_t i = 1; i < seq.size(); ++i) {
      if (seq[i].submit_time < seq[i - 1].submit_time) {
        return fail("site " + std::to_string(s) +
                    " submit times regress: txn #" + std::to_string(i) +
                    " at t=" + std::to_string(seq[i].submit_time) +
                    " precedes txn #" + std::to_string(i - 1) + " at t=" +
                    std::to_string(seq[i - 1].submit_time) +
                    " — corrupt or reordered capture");
      }
    }
    if (!seq.empty() && seq.back().submit_time > out->last_submit_time_) {
      out->last_submit_time_ = seq.back().submit_time;
    }
  }
  for (const auto& [txn, o] : open) {
    const ScriptTxn& st = out->per_site_[o.site][o.index];
    if (st.ops.size() != o.announced_ops) {
      return fail("txn " + std::to_string(txn) + " announced " +
                  std::to_string(o.announced_ops) + " ops but recorded " +
                  std::to_string(st.ops.size()) +
                  " kSubmitOp records — truncated or pre-v2 capture");
    }
  }
  return true;
}

core::WorkloadSource::Arrival ScriptWorkload::NextArrival(
    db::SiteId s, sim::RandomStream* /*rng*/) {
  const std::vector<ScriptTxn>& seq = script_->site(s);
  if (cursor_[s] >= seq.size()) return Arrival{};
  return Arrival{true, seq[cursor_[s]].submit_time, /*absolute=*/true};
}

txn::Transaction ScriptWorkload::NextTxn(db::TxnId id, db::SiteId s,
                                         sim::RandomStream* /*rng*/) {
  const std::vector<ScriptTxn>& seq = script_->site(s);
  char why[96];
  std::snprintf(why, sizeof(why),
                "site %u: NextTxn past end of script (cursor %zu, %zu txns)",
                static_cast<unsigned>(s), cursor_[s], seq.size());
  LAZYREP_CHECK_MSG(cursor_[s] < seq.size(), why);
  const ScriptTxn& st = seq[cursor_[s]++];
  txn::Transaction t;
  t.id = id;
  t.origin = s;
  t.is_update = st.is_update;
  t.ops = st.ops;
  t.RebuildAccessSets();
  return t;
}

core::SystemConfig MakeReplayConfig(const WorkloadScript& script,
                                    core::SystemConfig base, bool keep_seed) {
  base.num_sites = script.num_sites();
  base.workload.num_sites = script.num_sites();
  base.total_txns = script.total_submissions();
  if (!keep_seed) base.seed = script.seed();
  // The script dictates the offered load; base.tps only feeds the Poisson
  // generator a replay never consults, so pin it to the script's effective
  // rate purely so the printed/CSV "TPS offered" is honest.
  if (script.last_submit_time() > 0) {
    base.tps = static_cast<double>(script.total_submissions()) /
               script.last_submit_time();
  }
  base.Normalize();
  return base;
}

core::RunSpec MakeReplaySpec(std::shared_ptr<const WorkloadScript> script,
                             const core::SystemConfig& base,
                             core::ProtocolKind kind, double x,
                             bool keep_seed) {
  core::RunSpec spec;
  spec.config = MakeReplayConfig(*script, base, keep_seed);
  spec.protocol = kind;
  spec.x = x;
  spec.make_workload = [script]() -> std::unique_ptr<core::WorkloadSource> {
    return std::make_unique<ScriptWorkload>(script);
  };
  return spec;
}

}  // namespace lazyrep::replay
