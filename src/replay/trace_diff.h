#ifndef LAZYREP_REPLAY_TRACE_DIFF_H_
#define LAZYREP_REPLAY_TRACE_DIFF_H_

#include <string>
#include <vector>

#include "trace/trace_reader.h"

namespace lazyrep::replay {

/// Regression localization for event streams (DESIGN.md §4.9): two traces of
/// the same seeded run — before and after a code or config change — are
/// compared record by record, and the first diverging event is reported with
/// context, turning "a study output changed" into "event #N at t=… on site S
/// differs". Alignment: records are matched positionally for the first-
/// divergence scan, then keyed by (txn id, event type, per-key occurrence
/// index) to tell a displaced event (same event, different position or
/// payload) from one that vanished outright.

struct TraceDiffOptions {
  /// Records printed on each side of the first diverging index.
  int context = 3;
};

/// Outcome of comparing one point block pair.
struct PointDiff {
  bool identical = true;
  /// Index (into the lhs record stream) of the first diverging record; when
  /// one stream is a strict prefix of the other this is the prefix length.
  size_t first_divergence = 0;
  /// Human-readable localization: the diverging records decoded field by
  /// field, the surrounding context window, and where the lhs event went in
  /// the rhs stream (displaced / payload-changed / absent). Empty when
  /// identical.
  std::string summary;
};

/// Compares two decoded point blocks. Header fields that affect alignment
/// (record counts) are reconciled through the record scan itself; identity
/// fields (protocol, seed, x) merely annotate the summary when they differ.
PointDiff DiffPoint(const trace::PointTrace& a, const trace::PointTrace& b,
                    const TraceDiffOptions& opt = {});

/// Outcome of comparing two trace files point by point (by point index).
struct TraceDiff {
  bool identical = true;
  /// Index of the first differing point block, -1 when identical.
  int first_point = -1;
  /// The first differing point's story (plus a note when the files hold
  /// different point counts).
  std::string summary;
  /// Per-point outcomes for the points both files hold.
  std::vector<PointDiff> points;
};

TraceDiff DiffTraceFiles(const trace::TraceFile& a, const trace::TraceFile& b,
                         const TraceDiffOptions& opt = {});

/// "submit", "read", ... "submit_op" — the EventType vocabulary, shared by
/// the diff formatter and the tools.
const char* EventTypeName(uint8_t type);

}  // namespace lazyrep::replay

#endif  // LAZYREP_REPLAY_TRACE_DIFF_H_
